"""Experiment service: a long-running daemon wrapping the Runner.

One warm :class:`~repro.core.runner.Runner` stack (result cache,
artifact store, base-stream store, timing store) serves many experiment
matrices submitted over HTTP, so clients pay the trace/bundle warm-up
once per *daemon* instead of once per CLI invocation:

* ``POST /jobs`` submits a matrix spec into a priority queue with
  per-tenant quotas,
* ``GET /jobs/<id>`` returns job status plus the structured
  :class:`~repro.core.run_report.RunReport`,
* ``GET /jobs/<id>/events`` streams per-cell progress (long-poll JSONL)
  from the crash-safe observability event sink,
* ``GET /results/<digest>`` fetches any cached result by content digest
  straight from the :class:`~repro.core.results_io.ResultCache`.

Everything is stdlib-only (``asyncio`` server, ``http.client`` client);
results served by the daemon are bit-identical to a direct
``Runner.run_matrix`` call (tests/test_service.py pins this).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobQueue,
    JobSpec,
    QuotaExceeded,
    SpecError,
)
from repro.service.server import ServiceServer

__all__ = [
    "ExperimentService",
    "Job",
    "JobCancelled",
    "JobQueue",
    "JobSpec",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SpecError",
]
