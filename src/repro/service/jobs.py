"""Job specs, job records, and the priority job queue.

A *job* is one experiment matrix (workloads x configs) submitted to the
daemon.  Jobs are queued by ``(priority, submission order)`` -- higher
priority first, FIFO within a priority -- and a per-tenant quota bounds
how many jobs any one tenant may have queued or running at once, so a
single client scripting a sweep cannot starve everyone else sharing the
daemon.

Cancellation is cooperative and reuses the runner's interrupt path: the
executor's progress callback checks :attr:`Job.cancel_requested` between
cells and raises :class:`JobCancelled`, which unwinds ``run_cells``
exactly like a Ctrl-C -- the parallel pool is torn down with
``cancel_futures`` and any multi-host claims are released by the
scheduler's interrupt handling (see repro.core.parallel / sched).
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.simulator import BACKENDS
from repro.traces.workloads import WORKLOAD_NAMES

__all__ = ["Job", "JobCancelled", "JobQueue", "JobSpec", "QuotaExceeded", "SpecError"]

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

FINAL_STATES = (DONE, FAILED, CANCELLED)

DEFAULT_TENANT = "default"


class SpecError(ValueError):
    """A submitted job spec is malformed (HTTP 400)."""


class QuotaExceeded(RuntimeError):
    """The tenant already has its quota of queued/running jobs (HTTP 429)."""


class JobCancelled(Exception):
    """Raised from the progress callback to unwind a cancelled job's run."""


def _known_configs() -> tuple:
    # the canonical config-name list lives next to the CLI; imported
    # lazily so repro.service never circularly imports repro.__main__
    from repro.__main__ import KNOWN_CONFIGS

    return KNOWN_CONFIGS


@dataclass(frozen=True)
class JobSpec:
    """Validated matrix spec of one job.

    ``branches``/``scale``/``backend``/``jobs`` default to the daemon's
    own defaults when the client omits them, so a spec names only what
    it cares about.
    """

    workloads: tuple
    configs: tuple
    branches: int
    scale: int
    backend: str
    jobs: int
    priority: int = 0
    tenant: str = DEFAULT_TENANT

    @staticmethod
    def from_dict(
        payload: object,
        default_branches: int = 120_000,
        default_scale: int = 8,
        default_backend: str = "auto",
        default_jobs: int = 1,
        tenant: Optional[str] = None,
    ) -> "JobSpec":
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object")
        known = set(
            ("workloads", "configs", "branches", "scale", "backend", "jobs", "priority", "tenant")
        )
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(f"unknown spec fields: {', '.join(unknown)}")

        workloads = payload.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise SpecError("spec requires a non-empty 'workloads' list")
        for name in workloads:
            if name not in WORKLOAD_NAMES:
                raise SpecError(
                    f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
                )
        configs = payload.get("configs")
        if not isinstance(configs, list) or not configs:
            raise SpecError("spec requires a non-empty 'configs' list")
        for name in configs:
            if name not in _known_configs():
                raise SpecError(
                    f"unknown config {name!r}; known: {', '.join(_known_configs())}"
                )

        def _int(key: str, default: int, minimum: int) -> int:
            value = payload.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise SpecError(f"{key!r} must be an integer >= {minimum}")
            return value

        branches = _int("branches", default_branches, 1)
        scale = _int("scale", default_scale, 1)
        jobs = _int("jobs", default_jobs, 1)
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise SpecError("'priority' must be an integer")
        backend = payload.get("backend", default_backend)
        if backend not in BACKENDS:
            raise SpecError(f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
        spec_tenant = payload.get("tenant", tenant) or DEFAULT_TENANT
        if not isinstance(spec_tenant, str):
            raise SpecError("'tenant' must be a string")
        return JobSpec(
            workloads=tuple(workloads),
            configs=tuple(configs),
            branches=branches,
            scale=scale,
            backend=backend,
            jobs=jobs,
            priority=priority,
            tenant=spec_tenant,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "workloads": list(self.workloads),
            "configs": list(self.configs),
            "branches": self.branches,
            "scale": self.scale,
            "backend": self.backend,
            "jobs": self.jobs,
            "priority": self.priority,
            "tenant": self.tenant,
        }


@dataclass
class Job:
    """One submitted matrix and its lifecycle record."""

    id: str
    spec: JobSpec
    seq: int
    state: str = QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: str = ""
    #: cell identity list, in matrix order: {"workload", "config", "digest"}
    cells: List[Dict[str, str]] = field(default_factory=list)
    #: structured RunReport dict, attached once the job finishes
    report: Optional[Dict[str, object]] = None
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: per-job progress-event counter (the events endpoint's cursor)
    events_emitted: int = 0
    #: cells resolved so far (cache hits included) -- /jobs/<id>/progress
    cells_done: int = 0

    @property
    def cancel_requested(self) -> bool:
        return self.cancel_event.is_set()

    @property
    def finished(self) -> bool:
        return self.state in FINAL_STATES

    def next_event_seq(self) -> int:
        self.events_emitted += 1
        return self.events_emitted

    def to_dict(self, verbose: bool = True) -> Dict[str, object]:
        data: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "events_emitted": self.events_emitted,
            "cells_done": self.cells_done,
        }
        if verbose:
            data["cells"] = list(self.cells)
            data["report"] = self.report
        return data


class JobQueue:
    """Priority queue of jobs with per-tenant quotas.

    ``quota`` bounds each tenant's *active* (queued + running) jobs;
    ``0`` disables the bound.  All methods are thread-safe; ``pop``
    blocks until a job is available or the timeout lapses, which is the
    executor drain loop's idle wait.
    """

    def __init__(self, quota: int = 0) -> None:
        self.quota = int(quota)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (-priority, seq, job_id)
        self._jobs: Dict[str, Job] = {}
        self._active: Dict[str, int] = {}  # tenant -> queued + running
        self._seq = 0

    def submit(self, spec: JobSpec) -> Job:
        with self._lock:
            if self.quota and self._active.get(spec.tenant, 0) >= self.quota:
                raise QuotaExceeded(
                    f"tenant {spec.tenant!r} already has {self.quota} active job(s)"
                )
            self._seq += 1
            job = Job(id=f"job-{self._seq:06d}", spec=spec, seq=self._seq)
            self._jobs[job.id] = job
            self._active[spec.tenant] = self._active.get(spec.tenant, 0) + 1
            heapq.heappush(self._heap, (-spec.priority, job.seq, job.id))
            self._available.notify()
            return job

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Highest-priority queued job, or ``None`` after ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    job = self._jobs[job_id]
                    if job.state == QUEUED:  # skip queue-cancelled entries
                        job.state = RUNNING
                        job.started_at = time.time()
                        return job
                if deadline is None:
                    self._available.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        return None

    def finish(self, job: Job, state: str, error: str = "") -> None:
        """Transition a running job to a final state and release its quota."""
        with self._lock:
            job.state = state
            job.error = error
            job.finished_at = time.time()
            tenant = job.spec.tenant
            self._active[tenant] = max(0, self._active.get(tenant, 0) - 1)
            job.done_event.set()

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; queue-cancel immediately if not started."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                tenant = job.spec.tenant
                self._active[tenant] = max(0, self._active.get(tenant, 0) - 1)
                job.done_event.set()
            elif job.state == RUNNING:
                job.cancel_event.set()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def active_count(self, tenant: str) -> int:
        with self._lock:
            return self._active.get(tenant, 0)

    def depth(self) -> int:
        """Jobs waiting to run (queued state, cancellations excluded)."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == QUEUED)

    def by_state(self) -> Dict[str, int]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return states

    def by_tenant(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant queued/running counts (the /metrics tenant gauges)."""
        with self._lock:
            tenants: Dict[str, Dict[str, int]] = {}
            for job in self._jobs.values():
                if job.state not in (QUEUED, RUNNING):
                    continue
                entry = tenants.setdefault(job.spec.tenant, {"queued": 0, "running": 0})
                entry[job.state] += 1
            return tenants

    def wake(self) -> None:
        """Nudge a blocked ``pop`` (used by the daemon's shutdown)."""
        with self._lock:
            self._available.notify_all()
