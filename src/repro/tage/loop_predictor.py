"""The loop-exit predictor component of TAGE-SC-L.

Captures loops with near-constant trip counts: once the same iteration
count has been observed enough consecutive times (confidence saturates),
the predictor supplies "taken until the recorded trip count, then exit",
overriding TAGE.  Modelled after the CBP-5 TAGE-SC-L loop predictor with
direct-mapped entries and age-based reallocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.stats import StatGroup

_CONF_MAX = 7
_AGE_MAX = 255


@dataclass
class _LoopEntry:
    tag: int = -1
    past_iter: int = 0
    current_iter: int = 0
    confidence: int = 0
    age: int = 0
    direction: bool = True  # the direction taken while looping


@dataclass
class LoopPrediction:
    """Result of a loop-predictor lookup."""

    valid: bool  # entry found and confident
    pred: bool
    entry_index: int


class LoopPredictor:
    """A small direct-mapped table of loop trip counts."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self._mask = entries - 1
        self._entries = [_LoopEntry() for _ in range(entries)]
        self.stats = StatGroup("loop")

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def _tag(self, pc: int) -> int:
        return (pc >> 2) & 0x3FFF

    def predict(self, pc: int) -> LoopPrediction:
        idx = self._index(pc)
        entry = self._entries[idx]
        if entry.tag != self._tag(pc) or entry.confidence < _CONF_MAX:
            return LoopPrediction(valid=False, pred=True, entry_index=idx)
        exiting = entry.current_iter >= entry.past_iter
        return LoopPrediction(valid=True, pred=(not entry.direction) if exiting else entry.direction, entry_index=idx)

    def update(self, pc: int, taken: bool, tage_mispredicted: bool) -> None:
        """Track iteration counts; allocate on TAGE mispredictions."""
        idx = self._index(pc)
        tag = self._tag(pc)
        entry = self._entries[idx]

        if entry.tag == tag:
            if taken == entry.direction:
                entry.current_iter += 1
                if entry.current_iter > 0xFFFF:  # runaway loop; give up
                    self._reset(entry)
            else:
                if entry.past_iter == 0:
                    entry.past_iter = entry.current_iter
                    entry.confidence = 1
                elif entry.current_iter == entry.past_iter:
                    entry.confidence = min(_CONF_MAX, entry.confidence + 1)
                    entry.age = min(_AGE_MAX, entry.age + 1)
                else:
                    # trip count changed: retrain
                    entry.past_iter = entry.current_iter
                    entry.confidence = 0
                entry.current_iter = 0
            return

        if tage_mispredicted:
            if entry.age > 0:
                entry.age -= 1
            else:
                entry.tag = tag
                entry.past_iter = 0
                entry.current_iter = 1 if taken else 0
                entry.confidence = 0
                entry.age = _AGE_MAX // 2
                entry.direction = taken
                self.stats.add("allocations")

    @staticmethod
    def _reset(entry: _LoopEntry) -> None:
        entry.tag = -1
        entry.past_iter = 0
        entry.current_iter = 0
        entry.confidence = 0
        entry.age = 0

    def entry_state(self, pc: int) -> Optional[_LoopEntry]:
        """Peek at the entry a pc maps to (tests/diagnostics)."""
        entry = self._entries[self._index(pc)]
        return entry if entry.tag == self._tag(pc) else None
