"""Shared-base state for the config-batched simulation backend.

The key structural fact the batched backend exploits (pinned by
``tests/test_batched_equivalence.py``): for every shipped predictor, the
TAGE core and the loop predictor evolve as a pure function of
``(t, pc, taken)`` and their own :class:`~repro.tage.config.TageConfig`.
The LLBP wrappers call ``tage.fused_step(t, pc, taken)`` unconditionally
and train the loop predictor with ``loop.update(pc, taken, tage_pred !=
taken)`` -- none of those inputs depend on the pattern store, the SC, or
any other per-lane state.  So when several matrix cells over one trace
bundle share a TAGE configuration (a capacity sweep's LLBP lanes, or a
``tsl_64k``/``llbp``/``llbpx`` column), *one* TAGE core + loop predictor
can serve them all, bit-identically.

:class:`SharedBase` runs that shared base exactly once over the trace,
recording each conditional branch's base outputs -- TAGE direction and
confidence, bimodal direction, provider table, the post-loop TSL
direction, and loop validity -- packed into one small int per record.
Per-lane *tail* kernels (built here for plain TSL, and in
:mod:`repro.llbp.batched_state` for the LLBP family) then replay the
recorded stream instead of re-simulating the base, running only the
lane-divergent state machines (statistical corrector, pattern buffer /
store, CTT).

The recording is held as a packed ``uint64`` numpy array end-to-end --
compact (8 B/branch instead of ~28 B/branch of boxed Python ints),
mmap-sharable, and persistable as-is by the
:class:`~repro.core.artifacts.ArtifactStore` (the stream is a pure
function of trace bundle + base config, so one recording serves every
later run).  Tail kernels read it through ``ndarray.item`` so only plain
Python ints enter the per-branch hot path -- numpy scalar types must
never leak into predictor hashing.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.tage.config import TageConfig
from repro.tage.loop_predictor import _CONF_MAX, LoopPredictor
from repro.tage.streams import TraceTensors
from repro.tage.tage import TageCore
from repro.tage.tsl import TageSCL

# -- packed base-record layout (one int per trace record) ----------------------
#
#   bit 0      TAGE direction
#   bit 1      TSL direction (after the loop-predictor override)
#   bit 2      bimodal direction
#   bit 3      loop predictor valid (confident hit)
#   bits 4-9   provider table + 1 (0 = bimodal provider)
#   bits 10+   TAGE provider confidence

BASE_TAGE_PRED = 1
BASE_TSL_PRED = 2
BASE_BIM_PRED = 4
BASE_LOOP_VALID = 8
BASE_PROVIDER_SHIFT = 4
BASE_PROVIDER_MASK = 0x3F
BASE_CONF_SHIFT = 10

#: version of the packed word layout above; part of every persisted
#: base-stream key, so changing the layout invalidates stored streams
#: with no manual cleanup (see :mod:`repro.core.artifacts`)
BASE_STREAM_VERSION = 1

#: on-disk / in-memory dtype of a packed base stream
BASE_STREAM_DTYPE = np.uint64


def batchable_config(config: TageConfig) -> bool:
    """Whether a TAGE configuration can anchor a shared base.

    Infinite-capacity cells are structurally divergent (unbounded
    PC-tagged dict state; the limit-study semantics the reference path
    owns) and fall back lane-by-lane to the reference backend.
    """
    return not config.infinite


class SharedBase:
    """One shared TAGE core + loop predictor, recorded over a trace.

    Construction builds the components; :meth:`record` advances them over
    every conditional record exactly once (bit-identical to the base
    portion of each reference lane) while packing the per-branch outputs
    the lane tails need.  Lanes built afterwards via
    :class:`~repro.tage.tsl.TageSCL`'s ``core=``/``loop=`` injection end
    the run with precisely the reference lane's table state, because the
    base inputs are lane-invariant.

    :meth:`adopt_stream` is the warm path: a stream persisted by an
    earlier run (same bundle, same base config -- the
    :class:`~repro.core.artifacts.ArtifactStore` keys it so) is adopted
    directly and the base pass is skipped entirely.  Lane *results*
    (counts, stats, extra) are bit-identical either way -- the tails read
    only the packed words -- though an adopted base leaves the shared
    core/loop tables untrained, since nothing replays into them.
    """

    def __init__(self, config: TageConfig, tensors: TraceTensors) -> None:
        if not batchable_config(config):
            raise ValueError(f"config {config.name!r} is not batchable (infinite mode)")
        self.config = config
        self.core = TageCore(config, tensors)
        self.loop = LoopPredictor(config.loop_entries) if config.use_loop else None
        self._packed: Optional[np.ndarray] = None
        #: whether the stream arrived via :meth:`adopt_stream` (warm)
        self.adopted = False

    def record(self, trace, tensors: TraceTensors) -> None:
        """Advance the shared base over the whole trace, recording outputs.

        Mirrors the base portion of the fused reference kernels exactly:
        ``tage.fused_step`` (lookup + train), the inlined loop-predictor
        read, then ``loop.update`` -- all with lane-invariant inputs.
        The loop predictor trains immediately after its read here, while
        the reference kernels train it after the SC; the two orders are
        state-identical because the loop and SC share no state.
        """
        pcs, takens = trace.aslists("pcs", "taken")
        packed = [0] * len(pcs)
        fused = self.core.fused_step
        loop = self.loop
        if loop is not None:
            loop_entries = loop._entries
            loop_mask = loop._mask
            loop_update = loop.update
        for start, end, is_cond in tensors.kind_runs():
            if not is_cond:
                continue  # unconditional branches leave the base untouched
            for t in range(start, end):
                pc = pcs[t]
                taken = takens[t]
                tage_pred, conf, bim_pred, provider, _length = fused(t, pc, taken)
                word = BASE_TAGE_PRED if tage_pred else 0
                tsl_pred = tage_pred
                if loop is not None:
                    key = pc >> 2
                    entry = loop_entries[key & loop_mask]
                    if entry.tag == (key & 0x3FFF) and entry.confidence >= _CONF_MAX:
                        word |= BASE_LOOP_VALID
                        direction = entry.direction
                        tsl_pred = (
                            (not direction) if entry.current_iter >= entry.past_iter else direction
                        )
                    loop_update(pc, taken, tage_pred != taken)
                if tsl_pred:
                    word |= BASE_TSL_PRED
                if bim_pred:
                    word |= BASE_BIM_PRED
                packed[t] = (
                    word
                    | ((provider + 1) << BASE_PROVIDER_SHIFT)
                    | (conf << BASE_CONF_SHIFT)
                )
        # the transient plain-int list exists only within this call; the
        # stream is held (and persisted) as a packed uint64 array
        self._packed = np.asarray(packed, dtype=BASE_STREAM_DTYPE)

    def adopt_stream(self, packed: np.ndarray) -> None:
        """Adopt a previously persisted stream instead of recording one.

        ``packed`` is typically an ``mmap_mode="r"`` array straight from
        the artifact store; it is used as-is (no copy), so N processes
        replaying the same stream share its page-cache pages.  The shared
        core/loop stay untrained -- lane tails never read them.
        """
        if packed.ndim != 1:
            raise ValueError(f"packed base stream must be 1-D, got shape {packed.shape}")
        self._packed = packed if packed.dtype == BASE_STREAM_DTYPE else packed.astype(BASE_STREAM_DTYPE)
        self.adopted = True

    @property
    def recorded(self) -> bool:
        return self._packed is not None

    def packed_stream(self) -> np.ndarray:
        """The per-record base outputs as a packed ``uint64`` array."""
        if self._packed is None:
            raise RuntimeError("SharedBase.record() has not run yet")
        return self._packed

    def footprint_bytes(self) -> int:
        """Approximate memory held by the recorded stream (docs/telemetry)."""
        return 0 if self._packed is None else int(self._packed.nbytes)

    # -- lane tails --------------------------------------------------------------

    def build_tsl_tail(self, tsl: TageSCL) -> Callable[[int, int, bool], bool]:
        """Per-lane tail kernel for a plain TAGE-SC-L cell.

        Replays the recorded base outputs and runs only the lane's own
        statistical corrector and statistics -- the exact remainder of
        :meth:`TageSCL._build_step` after its TAGE + loop section.
        """
        # ndarray.item returns a plain Python int -- numpy scalars must
        # not leak into the SC's hashing, and plain-int bit ops are faster
        packed_word = self.packed_stream().item
        sc_fused = tsl.sc.fused_step if tsl.sc is not None else None
        stats = tsl.stats
        predictions_counter = stats.counter("predictions")
        stats_add = stats.add

        def tail(t: int, pc: int, taken: bool) -> bool:
            word = packed_word(t)
            tsl_pred = (word & BASE_TSL_PRED) != 0
            if sc_fused is not None:
                final = sc_fused(t, pc, tsl_pred, word >> BASE_CONF_SHIFT, taken)
            else:
                final = tsl_pred
            if final != taken:
                stats_add("mispredictions")
            if final != ((word & BASE_BIM_PRED) != 0):
                stats_add("fast_path_overrides")
            predictions_counter.value += 1
            return final != taken

        return tail
