"""Vectorised precomputation of folded-history index/tag streams.

Trace-driven simulation has a property this module exploits aggressively:
branch *outcomes* come from the trace, never from the predictor, so the
global history -- and therefore every folded history, table index, and
tag -- is a pure function of the trace.  We precompute those streams for
the whole trace with numpy once, and the per-branch simulation loop just
reads ``stream[table][t]``, which makes a 21-table TAGE tractable in
pure Python.

Folded-history math.  At record ``t`` the fold of window length ``L``
into width ``w`` is::

    folded[t] = XOR_{a=0}^{L-1}  b[t-1-a] << (a % w)

(the bit of age ``a`` has been rotated ``a`` times since insertion, so it
sits at position ``a % w`` -- identical to the incremental
:class:`repro.common.FoldedHistory`).  Grouping ages by residue ``p = a %
w`` turns each output bit into a parity of a strided subsequence of the
bit stream, which is a difference of strided XOR-prefix sums -- ``O(w)``
vector operations per (L, w) pair instead of ``O(L)``.

History-bit convention: conditional branches contribute their outcome;
unconditional branches contribute a *target-derived* bit, which is what
makes call paths visible to long-history pattern matching (DESIGN.md §4).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.traces.record import BranchKind, Trace

#: fold widths of the wide master streams; per-config widths are derived
#: from these by XOR-folding down (which preserves dependence on all ages)
WIDE_INDEX_BITS = 14
WIDE_TAG1_BITS = 20
WIDE_TAG2_BITS = 19


def history_bits(trace: Trace) -> np.ndarray:
    """Per-record global-history bit (uint8): outcome or target bit."""
    kinds = np.asarray(trace.kinds, dtype=np.int8)
    taken = np.asarray(trace.taken, dtype=np.uint8)
    targets = np.asarray(trace.targets, dtype=np.uint64)
    ub_bits = ((targets >> np.uint64(2)) ^ (targets >> np.uint64(5))).astype(np.uint8) & 1
    return np.where(kinds == int(BranchKind.COND), taken, ub_bits).astype(np.uint8)


def _strided_prefix_xor(bits: np.ndarray, stride: int) -> np.ndarray:
    """``C[t] = bits[t] ^ C[t - stride]`` for all t, vectorised.

    Computed as a parity cumsum along each of the ``stride`` interleaved
    columns.
    """
    n = len(bits)
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    rows = -(-n // stride)  # ceil division
    padded = np.zeros(rows * stride, dtype=np.int64)
    padded[:n] = bits
    columns = padded.reshape(rows, stride)
    prefix = np.cumsum(columns, axis=0) & 1
    return prefix.reshape(-1)[:n].astype(np.uint8)


def folded_stream(bits: np.ndarray, length: int, width: int) -> np.ndarray:
    """``folded[t]`` (per module docstring) for every record, as int32.

    ``folded[t]`` covers records ``t-1 .. t-L``; records before the trace
    start count as 0, matching a predictor that begins with empty history.
    """
    if length <= 0 or width <= 0:
        raise ValueError(f"length and width must be positive, got {length}, {width}")
    n = len(bits)
    prefix = _strided_prefix_xor(bits, width).astype(np.int64)
    # Left-pad with zeros so all window offsets index directly (records
    # before the trace start have zero history).
    pad = length + 2 * width + 2
    padded = np.zeros(pad + n, dtype=np.int64)
    padded[pad:] = prefix
    folded = np.zeros(n, dtype=np.int64)
    # every window offset is uniform across t, so each gather is a
    # contiguous slice (position of t-1 is pad-1+t)
    for p in range(min(width, length)):
        count = -(-(length - p) // width)  # ages p, p+w, ... below length
        hi = pad - 1 - p
        lo = hi - count * width
        term = padded[hi : hi + n] ^ padded[lo : lo + n]
        folded |= term << p
    return folded.astype(np.int32)


def xor_fold(values: np.ndarray, from_bits: int, to_bits: int) -> np.ndarray:
    """Fold a ``from_bits``-wide value down to ``to_bits`` by XOR of chunks."""
    if to_bits <= 0:
        raise ValueError(f"to_bits must be positive, got {to_bits}")
    out = values.astype(np.int64)
    if to_bits < from_bits:
        folded = np.zeros_like(out)
        shift = 0
        while shift < from_bits:
            folded ^= out >> shift
            shift += to_bits
        out = folded
    return out & ((1 << to_bits) - 1)


class TraceTensors:
    """Per-trace cache of history bits and wide folded streams.

    One instance is shared by every predictor configuration simulated on
    the same trace; folds are computed lazily per (length, width) pair.

    ``artifact_cache`` optionally attaches a persistent read-through /
    write-back store for the derived streams (duck-typed:
    ``load_fold/store_fold`` and ``load_stream/store_stream`` -- see
    :class:`repro.core.artifacts.BundleArtifacts`): folds and built
    index/tag/bimodal streams are then loaded memory-mapped when a prior
    run already computed them, and persisted when computed fresh.
    """

    def __init__(self, trace: Trace, artifact_cache: Optional[object] = None) -> None:
        self.trace = trace
        self.artifact_cache = artifact_cache
        self.num_records = len(trace)
        self.bits = history_bits(trace)
        self.pcs = np.asarray(trace.pcs, dtype=np.int64)
        self.kinds = np.asarray(trace.kinds, dtype=np.int8)
        # instruction index of each record (cumulative clock for timing)
        gaps = np.asarray(trace.inst_gaps, dtype=np.int64)
        self.instr_index = np.cumsum(gaps + 1)
        self._folds: Dict[Tuple[int, int], np.ndarray] = {}
        # built index/tag/bimodal streams, keyed by their full parameter
        # tuple; streams are read-only after construction, so every
        # predictor instance with the same table geometry shares them
        # (matrix runs build 3+ predictors per trace)
        self._streams: Dict[Tuple, object] = {}
        self._kind_runs: List[Tuple[int, int, bool]] = []

    def fold(self, length: int, width: int) -> np.ndarray:
        key = (length, width)
        if key not in self._folds:
            cache = self.artifact_cache
            fold = cache.load_fold(length, width) if cache is not None else None
            if fold is None:
                fold = folded_stream(self.bits, length, width)
                if cache is not None:
                    cache.store_fold(length, width, fold)
            self._folds[key] = fold
        return self._folds[key]

    def release_folds(self) -> None:
        """Free fold and stream memory (runner calls this between workloads)."""
        self._folds.clear()
        self._streams.clear()

    def kind_runs(self) -> List[Tuple[int, int, bool]]:
        """Maximal runs of same-kind records: ``[(start, end, is_cond), ...]``.

        The simulation loop iterates these instead of testing
        ``kinds[t] == COND`` per record; conditional/unconditional
        alternation is sparse relative to trace length, so the per-branch
        kind check (and its list indexing) amortises to ~nothing.
        """
        if not self._kind_runs and self.num_records:
            cond = self.kinds == np.int8(int(BranchKind.COND))
            boundaries = np.flatnonzero(np.diff(cond.view(np.int8))) + 1
            edges = [0, *boundaries.tolist(), self.num_records]
            self._kind_runs = [
                (edges[i], edges[i + 1], bool(cond[edges[i]])) for i in range(len(edges) - 1)
            ]
        return self._kind_runs


def _as_array(row: np.ndarray) -> array:
    """Convert a length-T int64 vector to a compact ``array('l')``.

    ``array`` indexing returns plain Python ints faster than numpy scalar
    indexing and stores 8 bytes per element with no object overhead.  On
    platforms where C ``long`` is 64-bit the bytes are copied directly;
    elsewhere we fall back to element-wise conversion.
    """
    out = array("l")
    if out.itemsize == 8:
        out.frombytes(np.ascontiguousarray(row, dtype=np.int64).tobytes())
    else:  # pragma: no cover - 32-bit long platforms
        out.extend(row.tolist())
    return out


def streams_to_matrix(rows: Sequence[array]) -> np.ndarray:
    """Serialise built stream rows to one contiguous int64 matrix.

    The inverse of :func:`matrix_to_streams`; the artifact store persists
    the matrix as a single ``.npy`` so a later run reconstructs the
    ``array('l')`` rows with two bulk copies instead of recomputing folds
    and hashes.
    """
    if rows and rows[0].itemsize == 8:
        return np.stack([np.frombuffer(row, dtype=np.int64) for row in rows])
    return np.asarray([row.tolist() for row in rows], dtype=np.int64)


def matrix_to_streams(matrix: np.ndarray) -> List[array]:
    """Rebuild per-table ``array('l')`` stream rows from a stored matrix."""
    return [_as_array(row) for row in np.atleast_2d(matrix)]


def _cached_stream(tensors: TraceTensors, key: Tuple) -> Optional[List[array]]:
    """Memo-then-artifact-store lookup of a built stream."""
    cached = tensors._streams.get(key)
    if cached is not None:
        return cached
    cache = tensors.artifact_cache
    if cache is not None:
        matrix = cache.load_stream(key)
        if matrix is not None:
            rows = matrix_to_streams(matrix)
            tensors._streams[key] = rows
            return rows
    return None


def _admit_stream(tensors: TraceTensors, key: Tuple, rows: List[array]) -> List[array]:
    """Memoise a freshly built stream and write it back to the store."""
    tensors._streams[key] = rows
    if tensors.artifact_cache is not None:
        tensors.artifact_cache.store_stream(key, streams_to_matrix(rows))
    return rows


def build_index_streams(
    tensors: TraceTensors,
    lengths: Sequence[int],
    index_bits: Sequence[int],
) -> List[array]:
    """Per-table index stream: hash of pc and folded history."""
    if len(lengths) != len(index_bits):
        raise ValueError("lengths and index_bits must align")
    key = ("idx", tuple(lengths), tuple(index_bits))
    cached = _cached_stream(tensors, key)
    if cached is not None:
        return cached
    pcs = tensors.pcs >> 2
    rows = []
    for table, (length, bits) in enumerate(zip(lengths, index_bits)):
        fold = tensors.fold(length, WIDE_INDEX_BITS)
        mixed = pcs ^ (pcs >> bits) ^ (np.int64(table + 1) * np.int64(0x9E37)) ^ fold.astype(np.int64)
        rows.append(_as_array(xor_fold(mixed, max(WIDE_INDEX_BITS, 30), bits)))
    return _admit_stream(tensors, key, rows)


def build_bimodal_stream(tensors: TraceTensors, bim_mask: int) -> array:
    """Per-record bimodal table index: ``(pc >> 2) & mask``.

    Precomputed so the fused hot path reads ``stream[t]`` like every other
    table index instead of re-hashing the pc per branch.
    """
    if bim_mask < 0:
        raise ValueError(f"bim_mask must be non-negative, got {bim_mask}")
    key = ("bim", bim_mask)
    cached = _cached_stream(tensors, key)
    if cached is not None:
        return cached[0]
    stream = _as_array((tensors.pcs >> np.int64(2)) & np.int64(bim_mask))
    return _admit_stream(tensors, key, [stream])[0]


def build_tag_streams(
    tensors: TraceTensors,
    lengths: Sequence[int],
    tag_bits: Sequence[int],
) -> List[array]:
    """Per-table tag stream: pc mixed with two independent folds."""
    if len(lengths) != len(tag_bits):
        raise ValueError("lengths and tag_bits must align")
    key = ("tag", tuple(lengths), tuple(tag_bits))
    cached = _cached_stream(tensors, key)
    if cached is not None:
        return cached
    pcs = tensors.pcs >> 2
    rows = []
    for length, bits in zip(lengths, tag_bits):
        fold1 = tensors.fold(length, WIDE_TAG1_BITS).astype(np.int64)
        fold2 = tensors.fold(length, WIDE_TAG2_BITS).astype(np.int64)
        mixed = pcs ^ (pcs >> 5) ^ fold1 ^ (fold2 << 1)
        rows.append(_as_array(xor_fold(mixed, max(WIDE_TAG1_BITS + 1, 30), bits)))
    return _admit_stream(tensors, key, rows)
