"""The statistical corrector (SC) component of TAGE-SC-L.

TAGE occasionally insists on a pattern-based prediction for branches that
are merely statistically biased; the SC is a small GEHL-style perceptron
that sums signed counters indexed by pc and several short global-history
hashes and overrides TAGE when the weighted vote confidently disagrees.
The confidence threshold adapts online (Seznec's dynamic threshold
fitting).

Like the TAGE core, the SC is stream-bound: its per-table history-hash
index streams are precomputed from the trace tensors.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, List

from repro.common.stats import StatGroup
from repro.tage.config import SC_HISTORY_LENGTHS, TageConfig
from repro.tage.streams import TraceTensors, build_index_streams


@dataclass
class SCPrediction:
    """Result of a statistical-corrector evaluation."""

    pred: bool  # final direction after possible override
    overrode: bool  # SC disagreed with and overrode the input prediction
    total: int  # signed perceptron sum (includes the prior term)


class StatisticalCorrector:
    """GEHL-style corrector with an adaptive override threshold."""

    def __init__(self, config: TageConfig, tensors: TraceTensors) -> None:
        self.config = config
        self.stats = StatGroup("sc")
        entries = config.sc_entries
        index_bits = max(2, (entries - 1).bit_length())
        self._mask = (1 << index_bits) - 1
        # length 0 = bias table indexed by pc alone; others use history hashes
        self._history_lengths = [length for length in SC_HISTORY_LENGTHS if length > 0]
        self.idx_streams: List[array] = build_index_streams(
            tensors, self._history_lengths, [index_bits] * len(self._history_lengths)
        )
        self._ctr_max = (1 << (config.sc_counter_bits - 1)) - 1
        self._ctr_min = -(self._ctr_max + 1)
        self._bias = array("h", [0]) * (1 << index_bits)
        self._tables = [array("h", [0]) * (1 << index_bits) for _ in self._history_lengths]
        # local-history component (real TSL has one): per-branch outcome
        # shift registers feeding a dedicated counter table
        self._local_bits = 11
        self._local_slot_mask = 1023
        self._local_hist = array("l", [0]) * 1024
        self._local_table = array("h", [0]) * (2 << index_bits)
        self._local_mask = (2 << index_bits) - 1
        # adaptive threshold state
        self._theta = 6
        self._theta_counter = 0
        #: fused evaluate+train kernel; bit-identical to predict()+update()
        self.fused_step = self._build_fused_step()

    def _bias_index(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> 8)) & self._mask

    def _local_index(self, pc: int) -> int:
        history = self._local_hist[(pc >> 2) & self._local_slot_mask]
        return ((pc >> 2) ^ (pc >> 7) ^ history * 3 ^ (history >> 4)) & self._local_mask

    def _sum(self, t: int, pc: int, input_pred: bool, input_conf: int) -> int:
        total = 2 * self._bias[self._bias_index(pc)] + 1
        total += 2 * (2 * self._local_table[self._local_index(pc)] + 1)
        for table, stream in zip(self._tables, self.idx_streams):
            total += 2 * table[stream[t]] + 1
        # prior: trust the input proportionally to its confidence
        prior = 4 + 2 * min(input_conf, 3)
        total += prior if input_pred else -prior
        return total

    def predict(self, t: int, pc: int, input_pred: bool, input_conf: int) -> SCPrediction:
        total = self._sum(t, pc, input_pred, input_conf)
        sc_pred = total >= 0
        if sc_pred != input_pred and abs(total) >= self._theta:
            self.stats.add("overrides")
            return SCPrediction(pred=sc_pred, overrode=True, total=total)
        return SCPrediction(pred=input_pred, overrode=False, total=total)

    def update(self, t: int, pc: int, taken: bool, result: SCPrediction) -> None:
        """Train counters on low-margin or incorrect sums; adapt threshold."""
        sc_pred = result.total >= 0
        if sc_pred != taken or abs(result.total) < self._theta * 4:
            delta = 1 if taken else -1
            idx = self._bias_index(pc)
            self._bias[idx] = self._clip(self._bias[idx] + delta)
            local = self._local_index(pc)
            self._local_table[local] = self._clip(self._local_table[local] + delta)
            for table, stream in zip(self._tables, self.idx_streams):
                j = stream[t]
                table[j] = self._clip(table[j] + delta)
        # local history advances on every resolved conditional branch
        slot = (pc >> 2) & self._local_slot_mask
        self._local_hist[slot] = ((self._local_hist[slot] << 1) | int(taken)) & ((1 << self._local_bits) - 1)
        # dynamic threshold fitting: balance override aggressiveness
        if result.overrode:
            if result.pred == taken:
                self._theta_counter -= 1
            else:
                self._theta_counter += 1
            if self._theta_counter >= 8:
                # the sum spans several hundred; the threshold must be able
                # to suppress a confidently-wrong consensus entirely
                self._theta = min(511, self._theta + self._theta // 8 + 2)
                self._theta_counter = 0
            elif self._theta_counter <= -8:
                self._theta = max(4, self._theta - max(1, self._theta // 16))
                self._theta_counter = 0

    def _clip(self, value: int) -> int:
        return max(self._ctr_min, min(self._ctr_max, value))

    # -- fused hot path ----------------------------------------------------------

    def _build_fused_step(self) -> Callable[[int, int, bool, int, bool], bool]:
        """Specialise the per-branch SC kernel at construction time.

        Returns ``fused(t, pc, input_pred, input_conf, taken) -> final
        prediction``: one call evaluates the corrector *and* trains it,
        matching ``predict()`` followed by ``update()`` bit for bit without
        constructing an :class:`SCPrediction`.  Tables, streams, and masks
        are hoisted into locals; the adaptive threshold stays on ``self``
        (it is only rewritten on the rare override path).
        """
        bias = self._bias
        mask = self._mask
        local_table = self._local_table
        local_hist = self._local_hist
        local_mask = self._local_mask
        local_slot_mask = self._local_slot_mask
        local_bits_mask = (1 << self._local_bits) - 1
        table_streams = tuple(zip(self._tables, self.idx_streams))
        ctr_max = self._ctr_max
        ctr_min = self._ctr_min
        stats_add = self.stats.add

        def fused(t: int, pc: int, input_pred: bool, input_conf: int, taken: bool) -> bool:
            pc2 = pc >> 2
            bias_idx = (pc2 ^ (pc >> 8)) & mask
            slot = pc2 & local_slot_mask
            history = local_hist[slot]
            local_idx = (pc2 ^ (pc >> 7) ^ history * 3 ^ (history >> 4)) & local_mask
            total = 2 * bias[bias_idx] + 1 + 2 * (2 * local_table[local_idx] + 1)
            for table, stream in table_streams:
                total += 2 * table[stream[t]] + 1
            prior = 4 + 2 * (input_conf if input_conf < 3 else 3)
            total += prior if input_pred else -prior

            sc_pred = total >= 0
            abs_total = total if sc_pred else -total
            theta = self._theta
            if sc_pred != input_pred and abs_total >= theta:
                stats_add("overrides")
                overrode = True
                final = sc_pred
            else:
                overrode = False
                final = input_pred

            # -- train --
            if sc_pred != taken or abs_total < theta * 4:
                if taken:
                    value = bias[bias_idx]
                    if value < ctr_max:
                        bias[bias_idx] = value + 1
                    value = local_table[local_idx]
                    if value < ctr_max:
                        local_table[local_idx] = value + 1
                    for table, stream in table_streams:
                        j = stream[t]
                        value = table[j]
                        if value < ctr_max:
                            table[j] = value + 1
                else:
                    value = bias[bias_idx]
                    if value > ctr_min:
                        bias[bias_idx] = value - 1
                    value = local_table[local_idx]
                    if value > ctr_min:
                        local_table[local_idx] = value - 1
                    for table, stream in table_streams:
                        j = stream[t]
                        value = table[j]
                        if value > ctr_min:
                            table[j] = value - 1
            local_hist[slot] = ((history << 1) | taken) & local_bits_mask

            if overrode:
                if final == taken:
                    counter = self._theta_counter - 1
                else:
                    counter = self._theta_counter + 1
                if counter >= 8:
                    self._theta = min(511, theta + theta // 8 + 2)
                    counter = 0
                elif counter <= -8:
                    self._theta = max(4, theta - max(1, theta // 16))
                    counter = 0
                self._theta_counter = counter
            return final

        return fused

    @property
    def theta(self) -> int:
        return self._theta
