"""TAGE-SC-L: the baseline predictor of the paper and LLBP's first level."""

from repro.tage.config import (
    DEEP_HISTORY_LENGTHS,
    HISTORY_LENGTHS,
    LLBP_HISTORY_LENGTHS,
    SC_HISTORY_LENGTHS,
    SHALLOW_HISTORY_LENGTHS,
    TageConfig,
    history_length_index,
    preset_by_name,
    tsl_128k,
    tsl_256k,
    tsl_512k,
    tsl_64k,
    tsl_infinite,
    tsl_small,
)
from repro.tage.loop_predictor import LoopPrediction, LoopPredictor
from repro.tage.statistical_corrector import SCPrediction, StatisticalCorrector
from repro.tage.streams import (
    TraceTensors,
    build_index_streams,
    build_tag_streams,
    folded_stream,
    history_bits,
    xor_fold,
)
from repro.tage.tage import TageCore, TagePrediction
from repro.tage.tsl import TSLPrediction, TageSCL

__all__ = [
    "DEEP_HISTORY_LENGTHS",
    "HISTORY_LENGTHS",
    "LLBP_HISTORY_LENGTHS",
    "LoopPrediction",
    "LoopPredictor",
    "SCPrediction",
    "SC_HISTORY_LENGTHS",
    "SHALLOW_HISTORY_LENGTHS",
    "StatisticalCorrector",
    "TSLPrediction",
    "TageConfig",
    "TageCore",
    "TagePrediction",
    "TageSCL",
    "TraceTensors",
    "build_index_streams",
    "build_tag_streams",
    "folded_stream",
    "history_bits",
    "history_length_index",
    "preset_by_name",
    "tsl_128k",
    "tsl_256k",
    "tsl_512k",
    "tsl_64k",
    "tsl_infinite",
    "tsl_small",
    "xor_fold",
]
