"""TAGE-SC-L: composition of the TAGE core, loop predictor, and SC.

The prediction pipeline is decomposed into stages --
:meth:`TageSCL.base_predict` (TAGE + loop) and :meth:`TageSCL.apply_sc`
-- because LLBP interposes *between* them: the pattern buffer competes
with TAGE's provider before the statistical corrector sees the combined
result (and the original LLBP suppresses the SC entirely when it
provides; see ``repro.llbp.llbp``).  :meth:`predict`/:meth:`update` give
the plain standalone-TSL behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.common.stats import StatGroup
from repro.obs.sampling import active_sampler
from repro.tage.config import TageConfig
from repro.tage.loop_predictor import _CONF_MAX, LoopPrediction, LoopPredictor
from repro.tage.statistical_corrector import SCPrediction, StatisticalCorrector
from repro.tage.streams import TraceTensors
from repro.tage.tage import TageCore, TagePrediction


@dataclass
class TSLPrediction:
    """Full record of one TAGE-SC-L prediction."""

    pred: bool  # final direction
    tage: TagePrediction
    loop: Optional[LoopPrediction]
    sc: Optional[SCPrediction]
    base_pred: bool  # TAGE+loop prediction, before the SC

    @property
    def provider_length(self) -> int:
        return self.tage.provider_length


class TageSCL:
    """A complete TAGE-SC-L instance bound to one trace.

    ``core``/``loop`` optionally inject pre-built shared components: the
    batched backend (:mod:`repro.core.batched`) drives one TAGE core and
    loop predictor for every lane that shares a :class:`TageConfig`, and
    each lane's TSL then owns only its statistical corrector and stats.
    When ``core`` is injected the caller must also replace ``self.step``
    (the default kernel would advance the shared core a second time);
    ``loop`` is only consulted alongside ``core``.
    """

    def __init__(
        self,
        config: TageConfig,
        tensors: TraceTensors,
        core: Optional[TageCore] = None,
        loop: Optional[LoopPredictor] = None,
    ) -> None:
        self.config = config
        self.name = config.name
        if core is not None:
            self.tage = core
            self.loop = loop
        else:
            self.tage = TageCore(config, tensors)
            self.loop = LoopPredictor(config.loop_entries) if config.use_loop else None
        self.sc = StatisticalCorrector(config, tensors) if config.use_sc else None
        self.stats = StatGroup(f"tsl[{config.name}]")
        #: fused predict+update entry point used by the simulation loop
        self.step = self._build_step()
        sampler = active_sampler()
        if sampler is not None:
            # only wraps when telemetry sampling is enabled; the default
            # hot path runs the bare fused kernel untouched
            self.step = sampler.instrument(self.name, self.step, self.telemetry_sample)

    def telemetry_sample(self) -> Dict[str, float]:
        """Periodic sampler payload: the TAGE core's internals."""
        return {"tage.%s" % key: value for key, value in self.tage.telemetry_sample().items()}

    # -- staged prediction (used directly by the LLBP wrappers) -----------------

    def base_predict(self, t: int, pc: int) -> TSLPrediction:
        """TAGE lookup plus loop-predictor override; no SC yet."""
        tage_pred = self.tage.predict(t, pc)
        pred = tage_pred.pred
        loop_pred = None
        if self.loop is not None:
            loop_pred = self.loop.predict(pc)
            if loop_pred.valid:
                pred = loop_pred.pred
        return TSLPrediction(pred=pred, tage=tage_pred, loop=loop_pred, sc=None, base_pred=pred)

    def apply_sc(self, t: int, pc: int, prediction: TSLPrediction, pred: bool, conf: int) -> bool:
        """Run the statistical corrector over ``pred`` and record its result."""
        if self.sc is None:
            return pred
        sc_result = self.sc.predict(t, pc, pred, conf)
        prediction.sc = sc_result
        return sc_result.pred

    def base_update(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        """Train loop predictor and TAGE core (SC trained separately)."""
        tage_mispredicted = prediction.tage.pred != taken
        if self.loop is not None:
            self.loop.update(pc, taken, tage_mispredicted)
        self.tage.update(t, pc, taken, prediction.tage)

    def update_sc(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        if self.sc is not None and prediction.sc is not None:
            self.sc.update(t, pc, taken, prediction.sc)

    # -- standalone operation ----------------------------------------------------

    def predict(self, t: int, pc: int) -> TSLPrediction:
        prediction = self.base_predict(t, pc)
        final = self.apply_sc(t, pc, prediction, prediction.pred, prediction.tage.confidence)
        prediction.pred = final
        return prediction

    def update(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        if prediction.pred != taken:
            self.stats.add("mispredictions")
        if prediction.pred != prediction.tage.bim_pred:
            self.stats.add("fast_path_overrides")
        self.stats.add("predictions")
        self.update_sc(t, pc, taken, prediction)
        self.base_update(t, pc, taken, prediction)

    def on_unconditional(self, t: int, pc: int, target: int) -> None:
        """Unconditional branches need no state change: streams are precomputed."""

    # -- fused hot path ----------------------------------------------------------

    def _build_step(self) -> Callable[[int, int, bool], bool]:
        """Build the fused ``step(t, pc, taken) -> mispredicted`` kernel.

        One call per branch replaces ``predict()`` + ``update()``: the TAGE
        core runs its own fused lookup+train kernel, the loop predictor's
        lookup is inlined, and the statistical corrector runs its fused
        evaluate+train kernel.  No ``TagePrediction``/``TSLPrediction``/
        ``LoopPrediction``/``SCPrediction`` records are constructed.  The
        result -- final direction, every table write, and every statistic
        -- is bit-identical to the two-call API (pinned by
        ``tests/test_step_equivalence.py``).
        """
        tage_fused = self.tage.fused_step
        loop = self.loop
        sc_fused = self.sc.fused_step if self.sc is not None else None
        stats = self.stats
        predictions_counter = stats.counter("predictions")
        stats_add = stats.add
        if loop is not None:
            loop_entries = loop._entries
            loop_mask = loop._mask
            loop_update = loop.update

        def step(t: int, pc: int, taken: bool) -> bool:
            tage_pred, conf, bim_pred, _table, _length = tage_fused(t, pc, taken)
            pred = tage_pred
            if loop is not None:
                key = pc >> 2
                entry = loop_entries[key & loop_mask]
                if entry.tag == (key & 0x3FFF) and entry.confidence >= _CONF_MAX:
                    direction = entry.direction
                    pred = (not direction) if entry.current_iter >= entry.past_iter else direction
            final = sc_fused(t, pc, pred, conf, taken) if sc_fused is not None else pred
            if final != taken:
                stats_add("mispredictions")
            if final != bim_pred:
                stats_add("fast_path_overrides")
            predictions_counter.value += 1
            if loop is not None:
                loop_update(pc, taken, tage_pred != taken)
            return final != taken

        return step
