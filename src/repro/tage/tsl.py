"""TAGE-SC-L: composition of the TAGE core, loop predictor, and SC.

The prediction pipeline is decomposed into stages --
:meth:`TageSCL.base_predict` (TAGE + loop) and :meth:`TageSCL.apply_sc`
-- because LLBP interposes *between* them: the pattern buffer competes
with TAGE's provider before the statistical corrector sees the combined
result (and the original LLBP suppresses the SC entirely when it
provides; see ``repro.llbp.llbp``).  :meth:`predict`/:meth:`update` give
the plain standalone-TSL behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.stats import StatGroup
from repro.tage.config import TageConfig
from repro.tage.loop_predictor import LoopPrediction, LoopPredictor
from repro.tage.statistical_corrector import SCPrediction, StatisticalCorrector
from repro.tage.streams import TraceTensors
from repro.tage.tage import TageCore, TagePrediction


@dataclass
class TSLPrediction:
    """Full record of one TAGE-SC-L prediction."""

    pred: bool  # final direction
    tage: TagePrediction
    loop: Optional[LoopPrediction]
    sc: Optional[SCPrediction]
    base_pred: bool  # TAGE+loop prediction, before the SC

    @property
    def provider_length(self) -> int:
        return self.tage.provider_length


class TageSCL:
    """A complete TAGE-SC-L instance bound to one trace."""

    def __init__(self, config: TageConfig, tensors: TraceTensors) -> None:
        self.config = config
        self.name = config.name
        self.tage = TageCore(config, tensors)
        self.loop = LoopPredictor(config.loop_entries) if config.use_loop else None
        self.sc = StatisticalCorrector(config, tensors) if config.use_sc else None
        self.stats = StatGroup(f"tsl[{config.name}]")

    # -- staged prediction (used directly by the LLBP wrappers) -----------------

    def base_predict(self, t: int, pc: int) -> TSLPrediction:
        """TAGE lookup plus loop-predictor override; no SC yet."""
        tage_pred = self.tage.predict(t, pc)
        pred = tage_pred.pred
        loop_pred = None
        if self.loop is not None:
            loop_pred = self.loop.predict(pc)
            if loop_pred.valid:
                pred = loop_pred.pred
        return TSLPrediction(pred=pred, tage=tage_pred, loop=loop_pred, sc=None, base_pred=pred)

    def apply_sc(self, t: int, pc: int, prediction: TSLPrediction, pred: bool, conf: int) -> bool:
        """Run the statistical corrector over ``pred`` and record its result."""
        if self.sc is None:
            return pred
        sc_result = self.sc.predict(t, pc, pred, conf)
        prediction.sc = sc_result
        return sc_result.pred

    def base_update(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        """Train loop predictor and TAGE core (SC trained separately)."""
        tage_mispredicted = prediction.tage.pred != taken
        if self.loop is not None:
            self.loop.update(pc, taken, tage_mispredicted)
        self.tage.update(t, pc, taken, prediction.tage)

    def update_sc(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        if self.sc is not None and prediction.sc is not None:
            self.sc.update(t, pc, taken, prediction.sc)

    # -- standalone operation ----------------------------------------------------

    def predict(self, t: int, pc: int) -> TSLPrediction:
        prediction = self.base_predict(t, pc)
        final = self.apply_sc(t, pc, prediction, prediction.pred, prediction.tage.confidence)
        prediction.pred = final
        return prediction

    def update(self, t: int, pc: int, taken: bool, prediction: TSLPrediction) -> None:
        if prediction.pred != taken:
            self.stats.add("mispredictions")
        if prediction.pred != prediction.tage.bim_pred:
            self.stats.add("fast_path_overrides")
        self.stats.add("predictions")
        self.update_sc(t, pc, taken, prediction)
        self.base_update(t, pc, taken, prediction)

    def on_unconditional(self, t: int, pc: int, target: int) -> None:
        """Unconditional branches need no state change: streams are precomputed."""
