"""The tagged-geometric (TAGE) core: bimodal base plus tagged tables.

This is a faithful software model of the TAGE component of TAGE-SC-L
[Seznec, CBP-5]: partial tag matching over tables with geometrically
increasing history lengths, longest-match provider selection,
use-alt-on-newly-allocated arbitration, useful-bit guided allocation with
tick-based decay.

The model is *stream-bound*: it is constructed against a
:class:`~repro.tage.streams.TraceTensors` and reads precomputed per-table
index/tag streams instead of hashing at prediction time (see
``streams.py`` for why this is equivalent).  The ``infinite`` mode
implements the paper's Inf-TSL: unlimited associativity with PC tagging,
i.e. a dictionary keyed ``(pc, index, tag)`` per table, which removes
both capacity misses and aliasing.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.common.bitops import mix64
from repro.common.stats import StatGroup
from repro.tage.config import TageConfig
from repro.tage.streams import (
    TraceTensors,
    build_bimodal_stream,
    build_index_streams,
    build_tag_streams,
)

#: sentinel tag meaning "empty entry"
_EMPTY = -1


@dataclass
class TagePrediction:
    """Everything downstream consumers need to know about a TAGE lookup."""

    pred: bool  # effective TAGE prediction (after alt arbitration)
    provider_table: int  # -1 = bimodal
    provider_length: int  # history length of the provider (0 for bimodal)
    provider_ctr: int  # signed counter value of the provider
    provider_weak: bool
    provider_new: bool  # provider looks newly allocated
    alt_pred: bool
    alt_table: int
    longest_pred: bool  # prediction of the longest matching entry
    provider_index: int
    alt_index: int
    bim_pred: bool = True  # the bimodal base's direction (overriding model)

    @property
    def confidence(self) -> int:
        ctr = self.provider_ctr
        return ctr if ctr >= 0 else -ctr - 1


class TageCore:
    """Bimodal + tagged tables with Seznec-style update and allocation."""

    def __init__(self, config: TageConfig, tensors: TraceTensors) -> None:
        self.config = config
        self.tensors = tensors
        self.stats = StatGroup(f"tage[{config.name}]")
        lengths = list(config.history_lengths)
        self.lengths = lengths
        n = len(lengths)
        entry_bits = max(2, (config.entries_per_table - 1).bit_length())
        self._index_bits = [entry_bits] * n
        self._tag_bits = [config.tag_bits(i) for i in range(n)]
        self.idx_streams = build_index_streams(tensors, lengths, self._index_bits)
        self.tag_streams = build_tag_streams(tensors, lengths, self._tag_bits)

        entries = 1 << entry_bits
        self.entries_per_table = entries
        ctr_max = (1 << (config.counter_bits - 1)) - 1
        self._ctr_max = ctr_max
        self._ctr_min = -(ctr_max + 1)
        self._u_max = (1 << config.useful_bits) - 1

        if config.infinite:
            # (pc, idx, tag) -> [ctr, u]
            self._inf_tables: List[Dict[Tuple[int, int, int], List[int]]] = [dict() for _ in range(n)]
        else:
            self._tags = [array("l", [_EMPTY]) * entries for _ in range(n)]
            self._ctrs = [array("b", [0]) * entries for _ in range(n)]
            self._useful = [array("b", [0]) * entries for _ in range(n)]

        # Bimodal base: 2-bit counters, initialised weakly-taken-agnostic.
        bim_entries = config.bimodal_entries
        self._bim_mask = bim_entries - 1
        if bim_entries & self._bim_mask:
            raise ValueError(f"bimodal entries must be a power of two, got {bim_entries}")
        self._bimodal = array("b", [0]) * bim_entries
        # the base predictor reads its index stream like every tagged table
        self.bim_idx_stream = build_bimodal_stream(tensors, self._bim_mask)

        # use-alt-on-newly-allocated counter (4 bits, centred at 8)
        self._use_alt = 8
        # allocation throttle
        self._tick = 0
        self._tick_max = 1023
        self._alloc_rand = mix64(config.alloc_seed)

        #: fused lookup+train kernel; bit-identical to predict()+update()
        self.fused_step = self._build_fused_step()

    # -- helpers ---------------------------------------------------------------

    def _bim_index(self, pc: int) -> int:
        return (pc >> 2) & self._bim_mask

    def _bim_pred(self, pc: int) -> bool:
        return self._bimodal[self._bim_index(pc)] >= 0

    def _next_rand(self) -> int:
        self._alloc_rand = mix64(self._alloc_rand + 0x9E3779B97F4A7C15)
        return self._alloc_rand

    # -- prediction ---------------------------------------------------------------

    def predict(self, t: int, pc: int) -> TagePrediction:
        """Longest-match lookup with use-alt-on-NA arbitration."""
        provider = -1
        alt = -1
        provider_idx = -1
        alt_idx = -1
        if self.config.infinite:
            idxs = self.idx_streams
            tags = self.tag_streams
            tables = self._inf_tables
            for i in range(len(self.lengths) - 1, -1, -1):
                entry = tables[i].get((pc, idxs[i][t], tags[i][t]))
                if entry is not None:
                    if provider < 0:
                        provider = i
                        provider_idx = 0
                    else:
                        # prefer a trained entry as the alternate; skip
                        # one-visit junk that unbounded tables accumulate
                        if entry[0] not in (0, -1) or entry[1] > 0:
                            alt = i
                            alt_idx = 0
                            break
                        if alt < 0:
                            alt = i
                            alt_idx = 0
        else:
            tags_streams = self.tag_streams
            idx_streams = self.idx_streams
            table_tags = self._tags
            for i in range(len(self.lengths) - 1, -1, -1):
                idx = idx_streams[i][t]
                if table_tags[i][idx] == tags_streams[i][t]:
                    if provider < 0:
                        provider = i
                        provider_idx = idx
                    else:
                        alt = i
                        alt_idx = idx
                        break

        bim_ctr = self._bimodal[self.bim_idx_stream[t]]
        bim_pred = bim_ctr >= 0
        if provider < 0:
            return TagePrediction(
                pred=bim_pred, provider_table=-1, provider_length=0,
                provider_ctr=bim_ctr, provider_weak=False,
                provider_new=False, alt_pred=bim_pred, alt_table=-1,
                longest_pred=bim_pred, provider_index=-1, alt_index=-1,
                bim_pred=bim_pred,
            )

        ctr, useful = self._read(provider, t, pc, provider_idx)
        longest_pred = ctr >= 0
        weak = ctr in (0, -1)
        new = weak and useful == 0

        if alt >= 0:
            alt_ctr, _ = self._read(alt, t, pc, alt_idx)
            alt_pred = alt_ctr >= 0
        else:
            alt_pred = bim_pred

        use_alt = new and self._use_alt >= 8
        pred = alt_pred if use_alt else longest_pred
        return TagePrediction(
            pred=pred, provider_table=provider, provider_length=self.lengths[provider],
            provider_ctr=ctr, provider_weak=weak, provider_new=new,
            alt_pred=alt_pred, alt_table=alt, longest_pred=longest_pred,
            provider_index=provider_idx, alt_index=alt_idx,
            bim_pred=bim_pred,
        )

    def _read(self, table: int, t: int, pc: int, idx: int) -> Tuple[int, int]:
        if self.config.infinite:
            key = (pc, self.idx_streams[table][t], self.tag_streams[table][t])
            entry = self._inf_tables[table][key]
            return entry[0], entry[1]
        return self._ctrs[table][idx], self._useful[table][idx]

    def _write(self, table: int, t: int, pc: int, idx: int, ctr: int, useful: int) -> None:
        if self.config.infinite:
            key = (pc, self.idx_streams[table][t], self.tag_streams[table][t])
            self._inf_tables[table][key] = [ctr, useful]
        else:
            self._ctrs[table][idx] = ctr
            self._useful[table][idx] = useful

    # -- update ---------------------------------------------------------------

    def _update_ctr(self, ctr: int, taken: bool) -> int:
        if taken:
            return min(self._ctr_max, ctr + 1)
        return max(self._ctr_min, ctr - 1)

    def update(self, t: int, pc: int, taken: bool, pred: TagePrediction, allocate: bool = True) -> None:
        """Counter training, useful-bit management, and allocation."""
        mispredicted = pred.pred != taken

        if pred.provider_table >= 0:
            table, idx = pred.provider_table, pred.provider_index
            ctr, useful = self._read(table, t, pc, idx)
            new_ctr = self._update_ctr(ctr, taken)
            if pred.longest_pred != pred.alt_pred:
                if pred.longest_pred == taken:
                    useful = min(self._u_max, useful + 1)
                elif useful > 0:
                    useful -= 1
            self._write(table, t, pc, idx, new_ctr, useful)
            # use-alt-on-NA training: when provider was new and alt disagreed
            if pred.provider_new and pred.longest_pred != pred.alt_pred:
                if pred.alt_pred == taken:
                    self._use_alt = min(15, self._use_alt + 1)
                else:
                    self._use_alt = max(0, self._use_alt - 1)
            # train the alt/bimodal when the provider is weak
            if pred.provider_weak:
                if pred.alt_table >= 0:
                    alt_ctr, alt_u = self._read(pred.alt_table, t, pc, pred.alt_index)
                    self._write(pred.alt_table, t, pc, pred.alt_index, self._update_ctr(alt_ctr, taken), alt_u)
                else:
                    self._update_bimodal(self.bim_idx_stream[t], taken)
        else:
            self._update_bimodal(self.bim_idx_stream[t], taken)

        if allocate and mispredicted and pred.provider_table < len(self.lengths) - 1:
            self._allocate(t, pc, taken, pred.provider_table)
            self.stats.add("allocations")
        if mispredicted:
            self.stats.add("mispredictions")
        self.stats.add("updates")

    def _update_bimodal(self, idx: int, taken: bool) -> None:
        ctr = self._bimodal[idx]
        self._bimodal[idx] = min(1, ctr + 1) if taken else max(-2, ctr - 1)

    def _allocate(self, t: int, pc: int, taken: bool, provider_table: int) -> None:
        """Allocate entries in tables with longer history than the provider."""
        start = provider_table + 1
        # Seznec-style: sometimes skip ahead to spread allocations.
        if start < len(self.lengths) - 1 and self._next_rand() & 3 == 0:
            start += 1
        if self.config.infinite:
            # No capacity limit: allocate in the next free table.  A single
            # allocation per misprediction keeps unbounded tables from
            # filling with one-visit junk that would win longest-match.
            for i in range(start, len(self.lengths)):
                key = (pc, self.idx_streams[i][t], self.tag_streams[i][t])
                if key not in self._inf_tables[i]:
                    self._inf_tables[i][key] = [0 if taken else -1, 0]
                    return
            return

        budget = 2
        for i in range(start, len(self.lengths)):
            idx = self.idx_streams[i][t]
            if self._useful[i][idx] == 0:
                self._tags[i][idx] = self.tag_streams[i][t]
                self._ctrs[i][idx] = 0 if taken else -1
                self._useful[i][idx] = 0
                self._tick = max(0, self._tick - 1)
                budget -= 1
                if budget == 0:
                    return
            else:
                self._tick += 1
                if self._tick >= self._tick_max:
                    self._decay_useful()
                    self._tick = 0

    def _decay_useful(self) -> None:
        """Graceful aging of useful bits when allocations keep failing.

        Halving is vectorised: each table's ``array('b')`` is viewed as an
        int8 numpy array and shifted in place, so the 1023-failed-allocation
        stall costs O(tables) vector ops instead of O(tables x entries)
        Python iterations.
        """
        for useful in self._useful:
            view = np.frombuffer(useful, dtype=np.int8)
            np.right_shift(view, 1, out=view)
        self.stats.add("useful_decays")

    # -- fused hot path ----------------------------------------------------------

    def step(self, t: int, pc: int, taken: bool) -> bool:
        """Fused lookup + train; returns whether the prediction missed.

        Bit-identical to ``predict()`` followed by ``update()`` (same table
        state, same statistics) without constructing a
        :class:`TagePrediction`.  Consumers that need the full prediction
        record keep using the two-call API.
        """
        return self.fused_step(t, pc, taken)[0] != taken

    def _build_fused_step(self) -> Callable[[int, int, bool], Tuple[bool, int, bool, int, int]]:
        """Specialise the per-branch kernel for this configuration.

        Returns ``fused(t, pc, taken) -> (pred, confidence, bim_pred,
        provider_table, provider_length)``: one call performs the complete
        lookup *and* training of the TAGE core.  All table/stream/stat
        lookups are hoisted into the closure, and the finite/infinite mode
        split is resolved here, at construction time, instead of per branch.
        The returned tuple carries exactly what the TAGE-SC-L and LLBP
        wrappers need to finish their own fused steps.
        """
        lengths = self.lengths
        last = len(lengths) - 1
        idx_streams = self.idx_streams
        tag_streams = self.tag_streams
        bim_stream = self.bim_idx_stream
        bimodal = self._bimodal
        ctr_max = self._ctr_max
        ctr_min = self._ctr_min
        u_max = self._u_max
        stats = self.stats
        updates_counter = stats.counter("updates")
        stats_add = stats.add
        allocate = self._allocate

        if self.config.infinite:
            scan = tuple(
                (i, idx_streams[i], tag_streams[i], self._inf_tables[i])
                for i in range(last, -1, -1)
            )

            def fused(t: int, pc: int, taken: bool) -> Tuple[bool, int, bool, int, int]:
                provider = -1
                alt = -1
                p_entry = a_entry = None
                for i, idxs, tags, table in scan:
                    entry = table.get((pc, idxs[t], tags[t]))
                    if entry is not None:
                        if provider < 0:
                            provider = i
                            p_entry = entry
                        else:
                            e0 = entry[0]
                            if (e0 != 0 and e0 != -1) or entry[1] > 0:
                                alt = i
                                a_entry = entry
                                break
                            if alt < 0:
                                alt = i
                                a_entry = entry

                bidx = bim_stream[t]
                bim_ctr = bimodal[bidx]
                bim_pred = bim_ctr >= 0
                if provider < 0:
                    pred = bim_pred
                    if taken:
                        if bim_ctr < 1:
                            bimodal[bidx] = bim_ctr + 1
                    elif bim_ctr > -2:
                        bimodal[bidx] = bim_ctr - 1
                    if pred != taken:
                        allocate(t, pc, taken, -1)
                        stats_add("allocations")
                        stats_add("mispredictions")
                    updates_counter.value += 1
                    conf = bim_ctr if bim_ctr >= 0 else -bim_ctr - 1
                    return pred, conf, bim_pred, -1, 0

                ctr = p_entry[0]
                useful = p_entry[1]
                longest_pred = ctr >= 0
                weak = ctr == 0 or ctr == -1
                new = weak and useful == 0
                if alt >= 0:
                    alt_ctr = a_entry[0]
                    alt_pred = alt_ctr >= 0
                else:
                    alt_pred = bim_pred
                pred = alt_pred if (new and self._use_alt >= 8) else longest_pred
                conf = ctr if ctr >= 0 else -ctr - 1

                # -- train provider --
                if taken:
                    if ctr < ctr_max:
                        p_entry[0] = ctr + 1
                elif ctr > ctr_min:
                    p_entry[0] = ctr - 1
                if longest_pred != alt_pred:
                    if longest_pred == taken:
                        if useful < u_max:
                            p_entry[1] = useful + 1
                    elif useful > 0:
                        p_entry[1] = useful - 1
                    if new:
                        use_alt = self._use_alt
                        if alt_pred == taken:
                            if use_alt < 15:
                                self._use_alt = use_alt + 1
                        elif use_alt > 0:
                            self._use_alt = use_alt - 1
                if weak:
                    if alt >= 0:
                        if taken:
                            if alt_ctr < ctr_max:
                                a_entry[0] = alt_ctr + 1
                        elif alt_ctr > ctr_min:
                            a_entry[0] = alt_ctr - 1
                    else:
                        if taken:
                            if bim_ctr < 1:
                                bimodal[bidx] = bim_ctr + 1
                        elif bim_ctr > -2:
                            bimodal[bidx] = bim_ctr - 1

                if pred != taken:
                    if provider < last:
                        allocate(t, pc, taken, provider)
                        stats_add("allocations")
                    stats_add("mispredictions")
                updates_counter.value += 1
                return pred, conf, bim_pred, provider, lengths[provider]

            return fused

        scan = tuple(
            (i, idx_streams[i], tag_streams[i], self._tags[i], self._ctrs[i], self._useful[i])
            for i in range(last, -1, -1)
        )

        def fused(t: int, pc: int, taken: bool) -> Tuple[bool, int, bool, int, int]:
            provider = -1
            alt = -1
            provider_idx = alt_idx = -1
            p_ctrs = p_useful = a_ctrs = None
            for i, idxs, tags, table_tags, table_ctrs, table_useful in scan:
                idx = idxs[t]
                if table_tags[idx] == tags[t]:
                    if provider < 0:
                        provider = i
                        provider_idx = idx
                        p_ctrs = table_ctrs
                        p_useful = table_useful
                    else:
                        alt = i
                        alt_idx = idx
                        a_ctrs = table_ctrs
                        break

            bidx = bim_stream[t]
            bim_ctr = bimodal[bidx]
            bim_pred = bim_ctr >= 0
            if provider < 0:
                pred = bim_pred
                if taken:
                    if bim_ctr < 1:
                        bimodal[bidx] = bim_ctr + 1
                elif bim_ctr > -2:
                    bimodal[bidx] = bim_ctr - 1
                if pred != taken:
                    allocate(t, pc, taken, -1)
                    stats_add("allocations")
                    stats_add("mispredictions")
                updates_counter.value += 1
                conf = bim_ctr if bim_ctr >= 0 else -bim_ctr - 1
                return pred, conf, bim_pred, -1, 0

            ctr = p_ctrs[provider_idx]
            useful = p_useful[provider_idx]
            longest_pred = ctr >= 0
            weak = ctr == 0 or ctr == -1
            new = weak and useful == 0
            if alt >= 0:
                alt_ctr = a_ctrs[alt_idx]
                alt_pred = alt_ctr >= 0
            else:
                alt_pred = bim_pred
            pred = alt_pred if (new and self._use_alt >= 8) else longest_pred
            conf = ctr if ctr >= 0 else -ctr - 1

            # -- train provider --
            if taken:
                if ctr < ctr_max:
                    p_ctrs[provider_idx] = ctr + 1
            elif ctr > ctr_min:
                p_ctrs[provider_idx] = ctr - 1
            if longest_pred != alt_pred:
                if longest_pred == taken:
                    if useful < u_max:
                        p_useful[provider_idx] = useful + 1
                elif useful > 0:
                    p_useful[provider_idx] = useful - 1
                if new:
                    use_alt = self._use_alt
                    if alt_pred == taken:
                        if use_alt < 15:
                            self._use_alt = use_alt + 1
                    elif use_alt > 0:
                        self._use_alt = use_alt - 1
            if weak:
                if alt >= 0:
                    if taken:
                        if alt_ctr < ctr_max:
                            a_ctrs[alt_idx] = alt_ctr + 1
                    elif alt_ctr > ctr_min:
                        a_ctrs[alt_idx] = alt_ctr - 1
                else:
                    if taken:
                        if bim_ctr < 1:
                            bimodal[bidx] = bim_ctr + 1
                    elif bim_ctr > -2:
                        bimodal[bidx] = bim_ctr - 1

            if pred != taken:
                if provider < last:
                    allocate(t, pc, taken, provider)
                    stats_add("allocations")
                stats_add("mispredictions")
            updates_counter.value += 1
            return pred, conf, bim_pred, provider, lengths[provider]

        return fused

    # -- introspection ---------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of tagged entries currently valid (diagnostics/tests).

        Only meaningful for finite tables; infinite mode has no capacity to
        be a fraction of -- use :meth:`entry_count` there.
        """
        if self.config.infinite:
            raise ValueError("infinite mode has no capacity; use entry_count()")
        return self.entry_count() / (len(self._tags) * self.entries_per_table)

    def entry_count(self) -> int:
        """Number of valid tagged entries across all tables (both modes)."""
        if self.config.infinite:
            return sum(len(table) for table in self._inf_tables)
        return sum(1 for tags in self._tags for tag in tags if tag != _EMPTY)

    def telemetry_sample(self) -> Dict[str, float]:
        """Point-in-time internals snapshot for the obs sampler.

        Finite mode reports table occupancy and the fraction of valid
        entries whose useful counter is saturated (the signal the paper's
        §V tuning discussion reads); infinite mode has no capacity, so it
        reports the raw entry count instead.  Runs per sampling interval
        (never per branch), so numpy full-table scans are fine.
        """
        sample: Dict[str, float] = {"use_alt": float(self._use_alt)}
        if self.config.infinite:
            sample["entries"] = float(self.entry_count())
            return sample
        valid_total = 0
        saturated = 0
        for tags, useful in zip(self._tags, self._useful):
            tag_arr = np.frombuffer(tags, dtype="i%d" % tags.itemsize)
            useful_arr = np.frombuffer(useful, dtype=np.int8)
            valid = tag_arr != _EMPTY
            valid_total += int(valid.sum())
            saturated += int((useful_arr[valid] >= self._u_max).sum())
        capacity = len(self._tags) * self.entries_per_table
        sample["occupancy"] = valid_total / capacity if capacity else 0.0
        sample["useful_saturation"] = saturated / valid_total if valid_total else 0.0
        return sample
