"""TAGE-SC-L configuration and the paper's predictor presets.

The paper's baseline is a 64KB TAGE-SC-L ("64K TSL") with 21 tagged
tables whose geometric history lengths span 6..3000 bits.  The length
series below is constructed so that every anchor the paper cites (6, 37,
78, 112, 232, 1444, 3000) appears exactly, and so that

* ``lengths[0:16]`` spans 6..232   (LLBP-X's *shallow* history range), and
* ``lengths[5:21]`` spans 37..3000 (LLBP-X's *deep* history range),

as §VI of the paper specifies.

Presets keep the paper's names and capacity *ratios* while allowing a
``scale`` divisor on table entries so pure-Python simulation of the
capacity regime stays tractable (see DESIGN.md §1, "Scaled presets").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: the 21 geometric history lengths of the baseline TAGE (see module docstring)
HISTORY_LENGTHS: Tuple[int, ...] = (
    6, 9, 12, 18, 26,
    37, 44, 53, 64, 78,
    93, 112, 134, 161, 193,
    232, 360, 600, 960, 1444, 3000,
)

#: LLBP-X's shallow (W=2) history range: the 16 shortest lengths, 6..232
SHALLOW_HISTORY_LENGTHS: Tuple[int, ...] = HISTORY_LENGTHS[0:16]

#: LLBP-X's deep (W=64) history range: the 16 longest lengths, 37..3000
DEEP_HISTORY_LENGTHS: Tuple[int, ...] = HISTORY_LENGTHS[5:21]

#: the 16 of 21 lengths the *original* LLBP keeps (paper §II-C.4); chosen
#: here as an even spread over the full range, grouped into 4 buckets of 4
LLBP_HISTORY_LENGTHS: Tuple[int, ...] = (
    6, 12, 18, 26,
    37, 53, 78, 112,
    134, 193, 232, 360,
    600, 960, 1444, 3000,
)

#: statistical corrector GEHL history lengths (0 = bias table)
SC_HISTORY_LENGTHS: Tuple[int, ...] = (0, 4, 10, 18, 32)


def _check_ranges() -> None:
    assert SHALLOW_HISTORY_LENGTHS[0] == 6 and SHALLOW_HISTORY_LENGTHS[-1] == 232
    assert DEEP_HISTORY_LENGTHS[0] == 37 and DEEP_HISTORY_LENGTHS[-1] == 3000
    assert set(LLBP_HISTORY_LENGTHS) <= set(HISTORY_LENGTHS)


_check_ranges()


@dataclass(frozen=True)
class TageConfig:
    """Geometry and policy knobs for one TAGE-SC-L instance."""

    name: str = "tsl_64k"
    history_lengths: Tuple[int, ...] = HISTORY_LENGTHS
    log2_entries: int = 10  # entries per tagged table = 2**log2_entries
    log2_bimodal: int = 13
    tag_bits_short: int = 9  # tables with the 10 shortest histories
    tag_bits_long: int = 12
    counter_bits: int = 3
    useful_bits: int = 1
    scale: int = 1  # divides table entry counts (capacity scaling, DESIGN.md §1)
    infinite: bool = False  # unlimited associativity + PC tagging (Inf TSL)
    use_sc: bool = True
    use_loop: bool = True
    sc_log2_entries: int = 10
    sc_counter_bits: int = 6
    loop_entries: int = 64
    # deterministic pseudo-random allocation stream seed
    alloc_seed: int = 0xA110C

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.log2_entries < 1:
            raise ValueError(f"log2_entries must be >= 1, got {self.log2_entries}")
        if not self.history_lengths:
            raise ValueError("need at least one history length")
        if list(self.history_lengths) != sorted(self.history_lengths):
            raise ValueError("history lengths must be sorted ascending")

    @property
    def num_tables(self) -> int:
        return len(self.history_lengths)

    @property
    def entries_per_table(self) -> int:
        """Effective entries per tagged table after capacity scaling."""
        return max(4, (1 << self.log2_entries) // self.scale)

    @property
    def bimodal_entries(self) -> int:
        return max(16, (1 << self.log2_bimodal) // self.scale)

    @property
    def sc_entries(self) -> int:
        """SC tables are *not* capacity-scaled: the paper's sweeps vary TAGE
        table entries "while maintaining the configuration of Statistical
        Corrector and loop predictor" (§VII-G), and the capacity story under
        study lives in the pattern tables, not the corrector."""
        return 1 << self.sc_log2_entries

    def tag_bits(self, table: int) -> int:
        """Tag width of a given tagged table (short histories use fewer bits)."""
        return self.tag_bits_short if table < min(10, self.num_tables // 2) else self.tag_bits_long

    def storage_bits(self) -> int:
        """Approximate predictor storage in bits (for reports and budgets)."""
        if self.infinite:
            raise ValueError("infinite predictor has no storage budget")
        tagged = sum(
            self.entries_per_table * (self.tag_bits(i) + self.counter_bits + self.useful_bits)
            for i in range(self.num_tables)
        )
        bimodal = self.bimodal_entries * 2
        sc = len(SC_HISTORY_LENGTHS) * self.sc_entries * self.sc_counter_bits if self.use_sc else 0
        loop = self.loop_entries * 48 if self.use_loop else 0
        return tagged + bimodal + sc + loop

    def scaled(self, scale: int) -> "TageConfig":
        return replace(self, scale=scale, name=f"{self.name}@/{scale}")


# ---------------------------------------------------------------------------
# Presets.  Logical (scale=1) sizes follow the paper: the 64K TSL has 1K
# entries per tagged table; capacity steps multiply entries by 2x per
# doubling.  The "Inf" preset removes capacity limits and aliasing.
# ---------------------------------------------------------------------------


def tsl_64k(scale: int = 1) -> TageConfig:
    """The paper's baseline 64KB TAGE-SC-L."""
    return TageConfig(name="tsl_64k", log2_entries=10, log2_bimodal=13, scale=scale)


def tsl_128k(scale: int = 1) -> TageConfig:
    return TageConfig(name="tsl_128k", log2_entries=11, log2_bimodal=14, scale=scale)


def tsl_256k(scale: int = 1) -> TageConfig:
    return TageConfig(name="tsl_256k", log2_entries=12, log2_bimodal=14, scale=scale)


def tsl_512k(scale: int = 1) -> TageConfig:
    """The idealised 0-latency 512KB TSL used as the paper's upper bound."""
    return TageConfig(name="tsl_512k", log2_entries=13, log2_bimodal=15, scale=scale)


def tsl_infinite() -> TageConfig:
    """Infinite TSL: unlimited associativity, PC-tagged entries, no aliasing."""
    return TageConfig(name="tsl_inf", infinite=True)


def tsl_small(log2_entries: int, scale: int = 1) -> TageConfig:
    """Reduced-capacity baselines for the Fig 16b sweep (8K..32K TSL)."""
    name = {7: "tsl_8k", 8: "tsl_16k", 9: "tsl_32k", 10: "tsl_64k"}.get(
        log2_entries, f"tsl_2^{log2_entries}"
    )
    bimodal = log2_entries + 3
    return TageConfig(name=name, log2_entries=log2_entries, log2_bimodal=bimodal, scale=scale)


def preset_by_name(name: str, scale: int = 1) -> TageConfig:
    """Look up a TSL preset by its report name (e.g. ``"tsl_512k"``)."""
    presets = {
        "tsl_8k": lambda: tsl_small(7, scale),
        "tsl_16k": lambda: tsl_small(8, scale),
        "tsl_32k": lambda: tsl_small(9, scale),
        "tsl_64k": lambda: tsl_64k(scale),
        "tsl_128k": lambda: tsl_128k(scale),
        "tsl_256k": lambda: tsl_256k(scale),
        "tsl_512k": lambda: tsl_512k(scale),
        "tsl_inf": tsl_infinite,
    }
    if name not in presets:
        raise KeyError(f"unknown TSL preset {name!r}; known: {', '.join(presets)}")
    return presets[name]()


_LENGTH_INDEX = {length: i for i, length in enumerate(HISTORY_LENGTHS)}


def history_length_index(length: int) -> int:
    """Position of ``length`` in the canonical 21-length series."""
    try:
        return _LENGTH_INDEX[length]
    except KeyError:
        raise ValueError(f"{length} is not one of the canonical history lengths") from None
